// Control-logic optimization: the workload class the paper's introduction
// motivates (irregular multi-level logic with shared support and multiple
// critical paths, where CLA-style regular tricks don't apply directly).
// Generates a synthetic control circuit, runs all three baseline flows and
// the lookahead flow, and prints a comparison like a row of Table 2.
//
//   $ ./examples/control_logic_flow [num_pis] [num_pos] [seed]

#include <cstdio>
#include <cstdlib>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace {

void report(const char* name, const lls::Aig& original, const lls::Aig& optimized,
            const lls::CellLibrary& lib) {
    const bool ok = lls::check_equivalence(original, optimized, 2000000).equivalent;
    const lls::MappedCircuit mapped = lls::map_circuit(optimized, lib);
    std::printf("%-12s gates=%5zu levels=%3d delay=%6.0f ps power=%6.3f mW  %s\n", name,
                optimized.count_reachable_ands(), optimized.depth(), mapped.delay_ps,
                mapped.power_mw, ok ? "(verified)" : "(NOT EQUIVALENT)");
    if (!ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
    lls::BenchmarkProfile profile;
    profile.name = "example";
    profile.num_pis = argc > 1 ? std::atoi(argv[1]) : 48;
    profile.num_pos = argc > 2 ? std::atoi(argv[2]) : 12;
    profile.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;
    profile.chain_length = 14;
    profile.num_shared = profile.num_pis / 2;

    const lls::Aig circuit = lls::synthetic_control_circuit(profile);
    std::printf("control circuit: %zu PIs, %zu POs, %zu AND nodes, depth %d\n",
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
    lls::Rng rng(1);
    report("SIS-like", circuit, lls::flow_sis(circuit, rng), lib);
    report("ABC-like", circuit, lls::flow_abc(circuit, rng), lib);
    report("DC-like", circuit, lls::flow_dc(circuit, rng), lib);

    lls::LookaheadParams params;
    lls::OptimizeStats stats;
    const lls::Aig ours = lls::optimize_timing(circuit, params, &stats);
    report("lookahead", circuit, ours, lib);
    for (const auto& line : stats.log) std::printf("    %s\n", line.c_str());
    return 0;
}
