// Control-logic optimization: the workload class the paper's introduction
// motivates (irregular multi-level logic with shared support and multiple
// critical paths, where CLA-style regular tricks don't apply directly).
// Generates a synthetic control circuit, runs all three baseline flows and
// the lookahead flow, and prints a comparison like a row of Table 2.
//
//   $ ./examples/control_logic_flow [num_pis] [num_pos] [seed]

#include <cstdio>
#include <cstdlib>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/parse.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace {

void report(const char* name, const lls::Aig& original, const lls::Aig& optimized,
            const lls::CellLibrary& lib) {
    const bool ok = lls::check_equivalence(original, optimized, 2000000).equivalent;
    const lls::MappedCircuit mapped = lls::map_circuit(optimized, lib);
    std::printf("%-12s gates=%5zu levels=%3d delay=%6.0f ps power=%6.3f mW  %s\n", name,
                optimized.count_reachable_ands(), optimized.depth(), mapped.delay_ps,
                mapped.power_mw, ok ? "(verified)" : "(NOT EQUIVALENT)");
    if (!ok) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
    lls::BenchmarkProfile profile;
    profile.name = "example";
    int num_pis = 48, num_pos = 12;
    std::uint64_t seed = 42;
    const bool args_ok =
        (argc <= 1 || lls::parse_int_option("num_pis", argv[1], 1, 100000, &num_pis)) &&
        (argc <= 2 || lls::parse_int_option("num_pos", argv[2], 1, 100000, &num_pos)) &&
        (argc <= 3 || lls::parse_u64_option("seed", argv[3], UINT64_MAX, &seed));
    if (!args_ok) {
        std::fprintf(stderr, "usage: %s [num_pis] [num_pos] [seed]\n", argv[0]);
        return 2;
    }
    profile.num_pis = num_pis;
    profile.num_pos = num_pos;
    profile.seed = seed;
    profile.chain_length = 14;
    profile.num_shared = profile.num_pis / 2;

    const lls::Aig circuit = lls::synthetic_control_circuit(profile);
    std::printf("control circuit: %zu PIs, %zu POs, %zu AND nodes, depth %d\n",
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
    lls::Rng rng(1);
    report("SIS-like", circuit, lls::flow_sis(circuit, rng), lib);
    report("ABC-like", circuit, lls::flow_abc(circuit, rng), lib);
    report("DC-like", circuit, lls::flow_dc(circuit, rng), lib);

    lls::LookaheadParams params;
    lls::OptimizeStats stats;
    const lls::Aig ours = lls::optimize_timing(circuit, params, &stats);
    report("lookahead", circuit, ours, lib);
    for (const auto& line : stats.log) std::printf("    %s\n", line.c_str());
    return 0;
}
